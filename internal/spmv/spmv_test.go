package spmv

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/partition"
)

// serialPower computes k normalized power iterations of the adjacency
// matrix in shared memory as the reference.
func serialPower(g *graph.Graph, k int) []float64 {
	x := make([]float64, g.N)
	y := make([]float64, g.N)
	for i := range x {
		x[i] = 1.0 / float64(g.N)
	}
	for it := 0; it < k; it++ {
		var norm float64
		for u := int64(0); u < g.N; u++ {
			var sum float64
			for _, v := range g.Neighbors(u) {
				sum += x[v]
			}
			y[u] = sum
			if a := math.Abs(sum); a > norm {
				norm = a
			}
		}
		if norm == 0 {
			norm = 1
		}
		for i := range x {
			x[i] = y[i] / norm
		}
	}
	return x
}

func TestSpMVMatchesSerialBothLayouts(t *testing.T) {
	g := gen.ERAvgDeg(512, 8, 5).MustBuild()
	const iters = 10
	ref := serialPower(g, iters)
	var refNorm float64
	for _, v := range ref {
		if a := math.Abs(v); a > refNorm {
			refNorm = a
		}
	}
	for _, layout := range []Layout{OneD, TwoD} {
		for _, p := range []int{1, 4, 6} {
			parts := partition.VertexBlock(g, p)
			mpi.Run(p, func(c *mpi.Comm) {
				res, err := Run(c, g, parts, Options{Layout: layout, Iterations: iters})
				if err != nil {
					t.Errorf("%v p=%d: %v", layout, p, err)
					return
				}
				if math.Abs(res.Checksum-refNorm) > 1e-9 {
					t.Errorf("%v p=%d: checksum %v, want %v", layout, p, res.Checksum, refNorm)
				}
			})
		}
	}
}

func TestLayoutsAgreeWithEachOther(t *testing.T) {
	g := gen.RMAT(9, 8, 7).MustBuild()
	const p = 4
	parts := partition.Random(g, p, 3)
	var cs [2]float64
	for li, layout := range []Layout{OneD, TwoD} {
		mpi.Run(p, func(c *mpi.Comm) {
			res, err := Run(c, g, parts, Options{Layout: layout, Iterations: 5})
			if err != nil {
				t.Fatalf("%v: %v", layout, err)
			}
			if c.Rank() == 0 {
				cs[li] = res.Checksum
			}
		})
	}
	if math.Abs(cs[0]-cs[1]) > 1e-9 {
		t.Fatalf("1D checksum %v != 2D checksum %v", cs[0], cs[1])
	}
}

func Test2DReducesCommOnSkewedGraph(t *testing.T) {
	// The Table III effect: on a skewed graph with a random vertex
	// partition, the 2D layout's total communication volume is lower
	// than 1D's.
	g := gen.ChungLu(4096, 32768, 2.0, 9).MustBuild()
	const p = 16
	parts := partition.Random(g, p, 5)
	var vol [2]int64
	for li, layout := range []Layout{OneD, TwoD} {
		mpi.Run(p, func(c *mpi.Comm) {
			res, err := Run(c, g, parts, Options{Layout: layout, Iterations: 3})
			if err != nil {
				t.Fatalf("%v: %v", layout, err)
			}
			v := mpi.AllreduceScalar(c, res.CommVolume, mpi.Sum)
			if c.Rank() == 0 {
				vol[li] = v
			}
		})
	}
	if vol[1] >= vol[0] {
		t.Errorf("2D volume %d not below 1D volume %d on skewed graph", vol[1], vol[0])
	}
}

func TestGoodPartitionReducesCommOver1DRandom(t *testing.T) {
	// A locality-preserving partition must communicate less than a
	// random one under the same 1D layout (the premise of Table III).
	g := gen.Grid3D(12, 12, 12).MustBuild()
	const p = 8
	var vol [2]int64
	for pi, parts := range [][]int32{partition.Random(g, p, 7), partition.VertexBlock(g, p)} {
		mpi.Run(p, func(c *mpi.Comm) {
			res, err := Run(c, g, parts, Options{Layout: OneD, Iterations: 3})
			if err != nil {
				t.Fatalf("%v", err)
			}
			v := mpi.AllreduceScalar(c, res.CommVolume, mpi.Sum)
			if c.Rank() == 0 {
				vol[pi] = v
			}
		})
	}
	if vol[1] >= vol[0] {
		t.Errorf("block partition volume %d not below random %d", vol[1], vol[0])
	}
}

func TestGridDims(t *testing.T) {
	cases := []struct{ p, pr, pc int }{
		{1, 1, 1}, {4, 2, 2}, {6, 2, 3}, {16, 4, 4}, {7, 1, 7}, {12, 3, 4},
	}
	for _, c := range cases {
		pr, pc := gridDims(c.p)
		if pr*pc != c.p {
			t.Errorf("gridDims(%d) = %d x %d", c.p, pr, pc)
		}
		if pr != c.pr || pc != c.pc {
			t.Errorf("gridDims(%d) = (%d,%d), want (%d,%d)", c.p, pr, pc, c.pr, c.pc)
		}
	}
}

func TestRejectsBadPartition(t *testing.T) {
	g := gen.ER(64, 128, 1).MustBuild()
	parts := make([]int32, g.N)
	parts[0] = 99
	mpi.Run(2, func(c *mpi.Comm) {
		if _, err := Run(c, g, parts, Options{Layout: OneD, Iterations: 1}); err == nil {
			t.Error("expected error for out-of-range part id")
		}
	})
}

func BenchmarkSpMV1D8Ranks(b *testing.B) {
	g := gen.RMAT(12, 16, 1).MustBuild()
	parts := partition.Random(g, 8, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mpi.Run(8, func(c *mpi.Comm) {
			if _, err := Run(c, g, parts, Options{Layout: OneD, Iterations: 10}); err != nil {
				b.Fatal(err)
			}
		})
	}
}
