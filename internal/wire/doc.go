// Package wire implements the frame codec of the socket transport: the
// length-prefixed (kind, tag, payload) encoding that carries every
// point-to-point message and collective contribution between rank
// processes.
//
// # Frame layout
//
// A frame is laid out as
//
//		┌────────────────┬──────┬─────────┬──────────────────────┐
//		│ uvarint nWords │ kind │ tag     │ payload              │
//		│ 1–5 bytes      │ 1 B  │ 4 B LE  │ 8·nWords bytes LE    │
//		└────────────────┴──────┴─────────┴──────────────────────┘
//
//	  - nWords is the payload length in 64-bit words, encoded as an
//	    unsigned varint (the one variable-width field; everything after
//	    it is fixed-size, so a reader knows the frame's full extent after
//	    at most headerMax bytes). Frames larger than MaxFrameWords are
//	    invalid: the bound is what lets a reader reject a corrupt length
//	    before allocating or over-reading.
//	  - kind discriminates the frame's stream: KindData frames belong to
//	    the point-to-point FIFO of their (src, dst) pair, KindColl frames
//	    to the collective stream, KindHello is the one-shot connection
//	    handshake, and KindPing is the liveness heartbeat (empty payload,
//	    consumed by the reader as progress and never queued). The split
//	    is what keeps a drainer goroutine
//	    receiving data frames while the main goroutine completes a
//	    collective — the two streams demultiplex into disjoint queues on
//	    arrival, mirroring the in-process transport's disjoint mailbox
//	    and barrier states.
//	  - tag is the sender's 32-bit round tag (mpi.RoundTag: 8-bit wave id
//	    + 24-bit sequence) on data frames, the collective sequence number
//	    on collective frames, and the sender's rank on hello frames. Tags
//	    never affect matching; receivers assert them to turn protocol
//	    skew into an immediate error instead of mis-decoded payloads.
//	  - payload is nWords little-endian 64-bit words. Element types other
//	    than int64 are bit-converted by the transport (float64 via
//	    math.Float64bits), never reinterpreted by the codec.
//
// # Ordering contract
//
// The codec itself is stateless; ordering comes from the carrier. The
// socket transport writes every frame for one destination on that
// destination's single connection in send order, so both streams
// inherit TCP/Unix-socket FIFO delivery per ordered pair — MPI's
// non-overtaking guarantee — while frames from different sources stay
// independent. Decoders must treat any malformed input (truncated
// header or payload, oversized or overlong varint, unknown kind) as an
// error, never a panic or an over-read; FuzzFrameDecode enforces this.
package wire
