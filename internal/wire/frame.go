package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame kinds. A decoder rejects anything else, so a corrupted kind
// byte surfaces as an error at the frame boundary instead of a payload
// routed to the wrong queue.
const (
	// KindData is a point-to-point message frame (the Isend64Tag path).
	KindData byte = 1
	// KindColl is a collective contribution or result frame.
	KindColl byte = 2
	// KindHello is the connection handshake: tag carries the dialing
	// rank, payload the protocol magic and world size.
	KindHello byte = 3
	// KindPing is a liveness heartbeat: an empty-payload frame the
	// transport's watchdog sends when a connection has been idle past
	// the heartbeat threshold. Receivers count it as progress and
	// discard it; it never enters a data or collective queue.
	KindPing byte = 4
)

// MaxFrameWords bounds a frame's payload length (words). It exists so
// a decoder can reject a corrupt or hostile length before allocating
// or reading: 1<<28 words is 2 GiB of payload, far above any exchange
// round this engine produces and far below what a flipped length byte
// can claim.
const MaxFrameWords = 1 << 28

// headerMax is the worst-case encoded header size: 5 varint bytes
// (MaxFrameWords fits 32 bits), 1 kind byte, 4 tag bytes.
const headerMax = 5 + 1 + 4

// Codec errors. Decode wraps them with position detail; errors.Is sees
// through.
var (
	// ErrTruncated reports input ending inside a frame.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrFrameTooBig reports a length prefix above MaxFrameWords.
	ErrFrameTooBig = errors.New("wire: frame length exceeds MaxFrameWords")
	// ErrBadKind reports an unknown frame kind byte.
	ErrBadKind = errors.New("wire: unknown frame kind")
	// ErrBadLength reports a malformed (overlong or overflowing)
	// varint length prefix.
	ErrBadLength = errors.New("wire: malformed frame length")
)

// AppendFrame appends the encoding of one frame to dst and returns the
// extended buffer. It validates kind and the payload bound so an
// encoder bug cannot produce a frame its own decoder rejects.
//
//repro:deterministic
func AppendFrame(dst []byte, kind byte, tag uint32, payload []int64) []byte {
	if kind != KindData && kind != KindColl && kind != KindHello && kind != KindPing {
		panic(fmt.Sprintf("wire: AppendFrame with unknown kind %d", kind))
	}
	if len(payload) > MaxFrameWords {
		panic(fmt.Sprintf("wire: AppendFrame payload of %d words exceeds MaxFrameWords", len(payload)))
	}
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint32(dst, tag)
	for _, w := range payload {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(w))
	}
	return dst
}

// FrameSize returns the encoded size of a frame with the given payload
// word count, for sizing write buffers.
func FrameSize(nWords int) int {
	n := 1
	for v := uint64(nWords); v >= 0x80; v >>= 7 {
		n++
	}
	return n + 1 + 4 + 8*nWords
}

// Decode decodes the first frame of b. It returns the frame fields,
// the number of bytes consumed, and an error for malformed input:
// truncation, an oversized or overlong length, an unknown kind. The
// payload is freshly allocated (decoders on the hot receive path use
// ReadFrame, which draws from the transport's pool instead). Decode
// never panics and never reads past the frame it returns.
//
//repro:deterministic
func Decode(b []byte) (kind byte, tag uint32, payload []int64, n int, err error) {
	nWords, vn := binary.Uvarint(b)
	if vn == 0 {
		return 0, 0, nil, 0, fmt.Errorf("%w: input ends inside length prefix", ErrTruncated)
	}
	if vn < 0 {
		return 0, 0, nil, 0, fmt.Errorf("%w: varint overflows 64 bits", ErrBadLength)
	}
	if nWords > MaxFrameWords {
		return 0, 0, nil, 0, fmt.Errorf("%w: %d words", ErrFrameTooBig, nWords)
	}
	rest := b[vn:]
	if len(rest) < 1+4 {
		return 0, 0, nil, 0, fmt.Errorf("%w: input ends inside header", ErrTruncated)
	}
	kind = rest[0]
	if kind != KindData && kind != KindColl && kind != KindHello && kind != KindPing {
		return 0, 0, nil, 0, fmt.Errorf("%w: %d", ErrBadKind, kind)
	}
	tag = binary.LittleEndian.Uint32(rest[1:5])
	body := rest[5:]
	if uint64(len(body)) < 8*nWords {
		return 0, 0, nil, 0, fmt.Errorf("%w: payload has %d of %d bytes", ErrTruncated, len(body), 8*nWords)
	}
	payload = make([]int64, nWords)
	for i := range payload {
		payload[i] = int64(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return kind, tag, payload, vn + 5 + 8*int(nWords), nil
}

// Reader is the input a streaming frame decoder needs: byte-at-a-time
// access for the varint prefix plus bulk reads for the body.
// *bufio.Reader satisfies it.
type Reader interface {
	io.Reader
	io.ByteReader
}

// ReadFrame reads one frame from r, drawing the payload buffer from
// alloc (the socket transport passes its pool's get so steady-state
// receives reuse recycled buffers). io.EOF is returned verbatim when
// the stream ends cleanly at a frame boundary; an EOF inside a frame
// becomes ErrTruncated. Any other malformed input (oversized length,
// unknown kind) is an error, never a panic, and never reads past the
// rejected header.
//
//repro:deterministic
func ReadFrame(r Reader, alloc func(n int) []int64) (kind byte, tag uint32, payload []int64, err error) {
	nWords, err := binary.ReadUvarint(r)
	if err != nil {
		if err == io.EOF {
			return 0, 0, nil, io.EOF // clean boundary
		}
		return 0, 0, nil, fmt.Errorf("%w: %v", ErrBadLength, err)
	}
	if nWords > MaxFrameWords {
		return 0, 0, nil, fmt.Errorf("%w: %d words", ErrFrameTooBig, nWords)
	}
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, 0, nil, fmt.Errorf("%w: input ends inside header", ErrTruncated)
	}
	kind = head[0]
	if kind != KindData && kind != KindColl && kind != KindHello && kind != KindPing {
		return 0, 0, nil, fmt.Errorf("%w: %d", ErrBadKind, kind)
	}
	tag = binary.LittleEndian.Uint32(head[1:5])
	payload = alloc(int(nWords))
	var raw [8]byte
	for i := range payload {
		if _, err := io.ReadFull(r, raw[:]); err != nil {
			return 0, 0, nil, fmt.Errorf("%w: payload has %d of %d words", ErrTruncated, i, nWords)
		}
		payload[i] = int64(binary.LittleEndian.Uint64(raw[:]))
	}
	return kind, tag, payload, nil
}
