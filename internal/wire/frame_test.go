package wire_test

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/mpi"
	"repro/internal/wire"
)

// exchangeSeeds builds representative payloads the way real exchange
// rounds do: packed (gid, payload) update pairs with a piggybacked
// tally frame appended by mpi.AppendTally, plus the degenerate shapes
// (empty round, tally-only, dense tally).
func exchangeSeeds(tb testing.TB) [][]int64 {
	tb.Helper()
	var seeds [][]int64
	mpi.Run(1, func(c *mpi.Comm) {
		update := []int64{42, 3, 97, 1, 1023, 2} // (gid, part) pairs
		sparse := make([]int64, 16)
		sparse[3], sparse[9] = 7, -2
		dense := []int64{5, -5, 8, -8, 1, -1, 2, -2, 3, -3, 4, -4, 6, -6, 7, -7}
		seeds = append(seeds,
			nil,
			mpi.AppendTally(c, append([]int64(nil), update...), sparse),
			mpi.AppendTally(c, nil, dense),
			mpi.AppendTally(c, append([]int64(nil), update...), make([]int64, 4)),
		)
	})
	return seeds
}

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range exchangeSeeds(t) {
		for _, kind := range []byte{wire.KindData, wire.KindColl, wire.KindHello, wire.KindPing} {
			enc := wire.AppendFrame(nil, kind, 0xdeadbeef, payload)
			if len(enc) != wire.FrameSize(len(payload)) {
				t.Fatalf("FrameSize(%d) = %d, encoded %d bytes", len(payload), wire.FrameSize(len(payload)), len(enc))
			}
			k, tag, dec, n, err := wire.Decode(enc)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if k != kind || tag != 0xdeadbeef || n != len(enc) {
				t.Fatalf("Decode = (%d, %#x, n=%d), want (%d, %#x, n=%d)", k, tag, n, kind, 0xdeadbeef, len(enc))
			}
			if !equal64(dec, payload) {
				t.Fatalf("payload round-trip mismatch: %v != %v", dec, payload)
			}
		}
	}
}

func TestReadFrameStream(t *testing.T) {
	seeds := exchangeSeeds(t)
	var stream []byte
	for i, p := range seeds {
		stream = wire.AppendFrame(stream, wire.KindData, uint32(i), p)
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	alloc := func(n int) []int64 { return make([]int64, n) }
	for i, p := range seeds {
		kind, tag, payload, err := wire.ReadFrame(br, alloc)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if kind != wire.KindData || tag != uint32(i) || !equal64(payload, p) {
			t.Fatalf("frame %d decoded (%d, %d, %v), want (%d, %d, %v)", i, kind, tag, payload, wire.KindData, i, p)
		}
	}
	if _, _, _, err := wire.ReadFrame(br, alloc); err != io.EOF {
		t.Fatalf("clean stream end: got %v, want io.EOF", err)
	}
}

// TestPingRoundTrip pins the heartbeat frame's shape: an empty-payload
// KindPing frame round-trips through both decoders, including when
// interleaved with data frames on one stream the way the watchdog
// emits it between exchange rounds.
func TestPingRoundTrip(t *testing.T) {
	ping := wire.AppendFrame(nil, wire.KindPing, 0, nil)
	k, tag, payload, n, err := wire.Decode(ping)
	if err != nil || k != wire.KindPing || tag != 0 || len(payload) != 0 || n != len(ping) {
		t.Fatalf("Decode(ping) = (%d, %d, %v, %d, %v)", k, tag, payload, n, err)
	}
	var stream []byte
	stream = wire.AppendFrame(stream, wire.KindData, 1, []int64{7})
	stream = wire.AppendFrame(stream, wire.KindPing, 0, nil)
	stream = wire.AppendFrame(stream, wire.KindData, 2, []int64{8})
	br := bufio.NewReader(bytes.NewReader(stream))
	alloc := func(n int) []int64 { return make([]int64, n) }
	wantKinds := []byte{wire.KindData, wire.KindPing, wire.KindData}
	for i, want := range wantKinds {
		k, _, payload, err := wire.ReadFrame(br, alloc)
		if err != nil || k != want {
			t.Fatalf("frame %d: kind %d err %v, want kind %d", i, k, err, want)
		}
		if want == wire.KindPing && len(payload) != 0 {
			t.Fatalf("ping carried %d payload words", len(payload))
		}
	}
	if _, _, _, err := wire.ReadFrame(br, alloc); err != io.EOF {
		t.Fatalf("stream end: %v, want io.EOF", err)
	}
}

func TestDecodeMalformed(t *testing.T) {
	good := wire.AppendFrame(nil, wire.KindData, 7, []int64{1, 2, 3})
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, wire.ErrTruncated},
		{"header cut", good[:1], wire.ErrTruncated},
		{"payload cut", good[:len(good)-1], wire.ErrTruncated},
		{"bad kind", append([]byte{3, 99}, good[2:]...), wire.ErrBadKind},
		{"oversized length", []byte{0xff, 0xff, 0xff, 0xff, 0x7f, wire.KindData, 0, 0, 0, 0}, wire.ErrFrameTooBig},
		{"varint overflow", []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, wire.ErrBadLength},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, _, _, err := wire.Decode(tc.b); !errors.Is(err, tc.want) {
				t.Fatalf("Decode(%x) err = %v, want %v", tc.b, err, tc.want)
			}
		})
	}
	// The same malformed inputs must error (not hang or panic) on the
	// streaming reader.
	for _, tc := range cases {
		br := bufio.NewReader(bytes.NewReader(tc.b))
		if _, _, _, err := wire.ReadFrame(br, func(n int) []int64 { return make([]int64, n) }); err == nil {
			t.Fatalf("ReadFrame(%s) unexpectedly succeeded", tc.name)
		}
	}
}

// FuzzFrameRoundTrip checks that every encodable frame decodes to
// itself, both from a byte slice and from a stream.
func FuzzFrameRoundTrip(f *testing.F) {
	for _, p := range exchangeSeeds(f) {
		var raw []byte
		for _, w := range p {
			raw = append(raw, byte(w), byte(w>>8), byte(w>>16), byte(w>>24), byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
		}
		f.Add(wire.KindData, uint32(len(p)), raw)
	}
	f.Fuzz(func(t *testing.T, kind byte, tag uint32, raw []byte) {
		kind = 1 + kind%4 // all valid kinds
		payload := make([]int64, len(raw)/8)
		for i := range payload {
			for b := 7; b >= 0; b-- {
				payload[i] = payload[i]<<8 | int64(raw[8*i+b])
			}
		}
		enc := wire.AppendFrame(nil, kind, tag, payload)
		k, tg, dec, n, err := wire.Decode(enc)
		if err != nil {
			t.Fatalf("Decode of encoder output: %v", err)
		}
		if k != kind || tg != tag || n != len(enc) || !equal64(dec, payload) {
			t.Fatalf("round trip mismatch: (%d,%d,%v,%d) != (%d,%d,%v,%d)", k, tg, dec, n, kind, tag, payload, len(enc))
		}
		br := bufio.NewReader(bytes.NewReader(enc))
		k2, tg2, dec2, err := wire.ReadFrame(br, func(n int) []int64 { return make([]int64, n) })
		if err != nil || k2 != kind || tg2 != tag || !equal64(dec2, payload) {
			t.Fatalf("stream round trip mismatch: (%d,%d,%v,%v)", k2, tg2, dec2, err)
		}
	})
}

// FuzzFrameDecode feeds arbitrary bytes to both decoders: they must
// return an error or a well-formed frame — never panic, never over-read
// (enforced by the consumed count), and a decoded frame must re-encode
// to something that decodes identically.
func FuzzFrameDecode(f *testing.F) {
	for _, p := range exchangeSeeds(f) {
		f.Add(wire.AppendFrame(nil, wire.KindData, 3, p))
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{2, wire.KindColl, 0, 0, 0, 0, 1})
	// Truncated hello handshakes: the rendezvous short-read shapes the
	// retry loop must classify as retryable, cut inside the header and
	// at every payload word boundary.
	hello := wire.AppendFrame(nil, wire.KindHello, 2, []int64{0x5245_5052_4f31, 4})
	f.Add(hello[:1])
	f.Add(hello[:3])
	f.Add(hello[:len(hello)-9])
	f.Add(hello[:len(hello)-1])
	// A bare heartbeat frame and one cut inside its header.
	ping := wire.AppendFrame(nil, wire.KindPing, 0, nil)
	f.Add(ping)
	f.Add(ping[:len(ping)-2])
	f.Fuzz(func(t *testing.T, b []byte) {
		kind, tag, payload, n, err := wire.Decode(b)
		if err != nil {
			// Malformed input must also error on the stream decoder, and
			// a clean EOF only on empty input.
			br := bufio.NewReader(bytes.NewReader(b))
			if _, _, _, serr := wire.ReadFrame(br, func(n int) []int64 { return make([]int64, n) }); serr == nil {
				t.Fatalf("Decode rejected (%v) but ReadFrame accepted: %x", err, b)
			}
			return
		}
		if n < 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		reenc := wire.AppendFrame(nil, kind, tag, payload)
		k2, tg2, p2, _, err2 := wire.Decode(reenc)
		if err2 != nil || k2 != kind || tg2 != tag || !equal64(p2, payload) {
			t.Fatalf("re-encode of decoded frame does not round-trip: %v", err2)
		}
	})
}

func equal64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
