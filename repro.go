// Package repro is a from-scratch Go reproduction of "Partitioning
// Trillion-edge Graphs in Minutes" (Slota, Rajamanickam, Devine,
// Madduri; IPDPS 2017): the XtraPuLP distributed-memory label
// propagation partitioner, every baseline it is evaluated against
// (PuLP, a METIS-like and a KaHIP-like multilevel partitioner, and the
// block/random strategies), the distributed substrate it runs on (a
// simulated MPI communicator with goroutine ranks, a 1D distributed
// CSR with ghost vertices), and the paper's downstream applications
// (six distributed graph analytics and 1D/2D SpMV).
//
// This file is the public facade: graph generation, one-call
// partitioning with any of the paper's methods, quality evaluation,
// and distributed runs. The building blocks live under internal/.
//
//	g := repro.RMAT(16, 16, 1).MustBuild()
//	parts, rep, err := repro.XtraPuLP(g, repro.Config{Parts: 16, Ranks: 4})
//	q := repro.Evaluate(g, parts, 16)
package repro

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/dgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/multilevel"
	"repro/internal/par"
	"repro/internal/partition"
	"repro/internal/pulp"
)

// Graph is the shared-memory CSR graph type.
type Graph = graph.Graph

// Generator lazily produces a seeded synthetic graph; see the gen
// package for the available families.
type Generator = gen.Generator

// Quality bundles the paper's partition quality metrics.
type Quality = partition.Quality

// Graph generators for every class in the paper's Table I.
var (
	// RMAT builds Graph500 R-MAT graphs (skewed, small-world).
	RMAT = gen.RMAT
	// RandER builds Erdős–Rényi G(n, m) graphs.
	RandER = gen.ER
	// RandHD builds the paper's high-diameter random graphs.
	RandHD = gen.RandHD
	// Mesh3D builds regular 3D grid meshes (InternalMesh stand-ins).
	Mesh3D = gen.Grid3D
	// SmallWorld builds Watts–Strogatz rings.
	SmallWorld = gen.WattsStrogatz
	// PowerLaw builds Chung–Lu power-law graphs (social/web proxies).
	PowerLaw = gen.ChungLu
)

// LoadGraph reads an edge-list file (.bin binary or text).
func LoadGraph(path string) (*Graph, error) { return graph.LoadFile(path) }

// SaveGraph writes an edge-list file (.bin binary or text).
func SaveGraph(path string, g *Graph) error { return graph.SaveFile(path, g) }

// Evaluate computes the paper's quality metrics for a partition.
func Evaluate(g *Graph, parts []int32, p int) Quality {
	return partition.Evaluate(g, parts, p)
}

// Config drives a distributed XtraPuLP run.
type Config struct {
	// Parts is the number of parts to compute (required).
	Parts int
	// Ranks is the number of simulated MPI ranks (default 1).
	Ranks int
	// ThreadsPerRank is the intra-rank thread budget. The repo-wide
	// rule: 0 (or negative) selects one worker per core
	// (par.DefaultThreads), an explicit 1 runs serial. The partitioner's
	// propagation RNG streams are keyed by thread id, so the partition
	// depends on the thread count — deterministic for a fixed count,
	// different across counts. Pin an explicit value when partitions
	// must reproduce across machines.
	ThreadsPerRank int
	// RandomDist selects the hashed (random) vertex distribution
	// instead of block; the paper observes random scales better for
	// irregular graphs.
	RandomDist bool
	// SingleConstraint solves the single-constraint single-objective
	// problem (§V.C comparison mode).
	SingleConstraint bool
	// AsyncExchange switches the boundary exchange from the bulk-
	// synchronous Alltoallv to the asynchronous delta-only path:
	// changed labels travel as packed single-element updates over
	// nonblocking point-to-point messages, drained concurrently with
	// local propagation, and per-part size tallies piggyback on the
	// same messages so iterations need no global Allreduce barrier
	// (see SizeEpoch). The final partition is identical for fixed
	// seeds, and the exchanged-element volume is strictly lower. The
	// analytics and SpMV paths select the same engine through
	// AnalyticsConfig.AsyncExchange and SpMVConfig.AsyncExchange.
	AsyncExchange bool
	// PipeDepth sets the async exchange engine's pipeline depth — how
	// many rounds of boundary messages may be in flight per exchanger
	// at once (0 = default 2; values 1 and below rejected). The
	// partitioner's own schedule never pipelines past 2, but the knob
	// travels with the graph, so analytics run on the same shards (and
	// the exchange experiment) inherit it. Ignored in sync mode. See
	// AnalyticsConfig.PipeDepth for the depth/2-wave HC engine it
	// enables.
	PipeDepth int
	// SizeEpoch bounds part-size estimate staleness in async mode:
	// every SizeEpoch-th iteration performs an exact Allreduce resync,
	// with settles in between derived purely from piggybacked neighbor
	// tallies. 0 (default) auto-selects: no resyncs at all when every
	// rank neighbors every other (the tallies are already exact global
	// sums), one per iteration otherwise so partitions always match
	// sync mode bit-for-bit. See core.Options.SizeEpoch.
	SizeEpoch int
	// Init selects the initialization strategy; zero value is the
	// paper's BFS hybrid.
	Init core.InitStrategy
	// OverrideXY, when true, replaces the multiplier schedule's X and
	// Y parameters with the Config values (needed to sweep X=Y=0).
	OverrideXY bool
	// X, Y override the multiplier schedule when OverrideXY is set or
	// either value is nonzero.
	X, Y float64
	// Seed fixes all randomness (default 1).
	Seed uint64
}

// Report describes one distributed partitioning run.
type Report struct {
	// Stage times from rank 0.
	InitTime, VertTime, EdgeTime, TotalTime time.Duration
	// InitIters is the number of initialization propagation rounds.
	InitIters int
	// Quality holds the collectively computed final metrics.
	Quality Quality
	// CommVolume is the total element volume all ranks exchanged,
	// including distributed graph construction.
	CommVolume int64
	// ExchangeVolume is the element volume sent during the
	// partitioning stages only — the number the sync-vs-async
	// exchange comparison is about.
	ExchangeVolume int64
	// ReductionOps is the number of Allreduce operations the
	// partitioning stages performed. Synchronous runs pay one per inner
	// iteration; async runs piggyback the tallies on the boundary
	// messages and drop to one per SizeEpoch iterations, or none
	// between stage recounts on complete rank neighborhoods.
	ReductionOps int64
}

// XtraPuLP partitions g with the paper's distributed partitioner on
// cfg.Ranks simulated MPI ranks and returns the global part assignment
// indexed by vertex id.
func XtraPuLP(g *Graph, cfg Config) ([]int32, Report, error) {
	gen := staticGenerator(g)
	return XtraPuLPGen(gen, cfg)
}

// XtraPuLPGen is XtraPuLP driven by a generator: each rank generates
// only its chunk of the edge list, so no rank ever materializes the
// whole graph — the paper's actual usage mode at scale.
func XtraPuLPGen(g *Generator, cfg Config) ([]int32, Report, error) {
	ranks := cfg.Ranks
	if ranks < 1 {
		ranks = 1
	}
	threads := par.ResolveThreads(cfg.ThreadsPerRank)
	var parts []int32
	var rep Report
	var runErr error
	mpi.RunThreads(ranks, threads, func(c *mpi.Comm) {
		p, r, err := XtraPuLPComm(c, g, cfg)
		if c.Rank() == 0 {
			parts, rep, runErr = p, r, err
		}
	})
	if runErr != nil {
		return nil, Report{}, runErr
	}
	return parts, rep, nil
}

// XtraPuLPComm is the per-rank body of XtraPuLPGen: it runs this
// rank's share of the distributed partitioner on an existing
// communicator — the entry point for externally formed worlds, where
// each OS process builds its Comm over a socket transport
// (mpi.DialSocket + mpi.NewComm) and calls this directly. Config.Ranks
// and Config.ThreadsPerRank are ignored; the communicator defines
// both. Every rank returns the full gathered partition and its own
// Report (timings are the local rank's; quality and volumes are
// collective and identical everywhere).
func XtraPuLPComm(c *mpi.Comm, g *Generator, cfg Config) ([]int32, Report, error) {
	if cfg.Parts < 1 {
		return nil, Report{}, fmt.Errorf("repro: Config.Parts = %d", cfg.Parts)
	}
	if err := validatePipeDepth(cfg.PipeDepth); err != nil {
		return nil, Report{}, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}

	opt := core.DefaultOptions(cfg.Parts)
	opt.SingleConstraint = cfg.SingleConstraint
	opt.Init = cfg.Init
	opt.Seed = seed
	if cfg.AsyncExchange {
		opt.Exchange = core.ExchangeAsyncDelta
	}
	opt.SizeEpoch = cfg.SizeEpoch
	if cfg.OverrideXY || cfg.X != 0 || cfg.Y != 0 {
		opt.X, opt.Y = cfg.X, cfg.Y
	}

	var dist dgraph.Distribution = dgraph.BlockDist{N: g.N, P: c.Size()}
	if cfg.RandomDist {
		dist = dgraph.HashDist{P: c.Size(), Seed: seed}
	}
	dg, err := dgraph.FromEdgeChunks(c, g.N, g.EdgesChunk(c.Rank(), c.Size()), dist)
	if err != nil {
		// Construction errors are deterministic and local-input
		// driven: every rank fails identically, so no collective is
		// left half-entered.
		return nil, Report{}, err
	}
	dg.SetPipeDepth(cfg.PipeDepth) // before the exchanger exists
	local, r, err := core.Partition(dg, opt)
	if err != nil {
		// Partition errors are symmetric across ranks and happen
		// between rounds, so the drainer teardown is safe here.
		dg.Close()
		return nil, Report{}, err
	}
	full := dg.GatherGlobal(local[:dg.NLocal])
	vol := mpi.AllreduceScalar(c, c.Stats().ElemsSent, mpi.Sum)
	// Normal-path teardown of the async exchanger's drainer (not
	// deferred: after a panic the poison + finalizer backstop
	// handle it — see Graph.Close).
	dg.Close()
	rep := Report{
		InitTime: r.InitTime, VertTime: r.VertTime,
		EdgeTime: r.EdgeTime, TotalTime: r.TotalTime,
		InitIters: r.InitIters, Quality: r.Quality,
		CommVolume: vol, ExchangeVolume: r.ExchangeVolume,
		ReductionOps: r.ReductionOps,
	}
	return full, rep, nil
}

// SocketComm joins this process to an externally launched socket
// world: it reads the REPRO_* rendezvous environment (set by
// cmd/reprorun or any MPI-style launcher; see mpi.SocketConfigFromEnv
// for the variables and their defaults), dials every peer with the
// retrying rendezvous, and returns this rank's communicator plus a
// closer that tears the transport down. threads is the intra-rank
// thread budget; 0 (or negative) defers to the REPRO_THREADS
// environment variable when it holds a positive integer (so a launcher
// can set the budget for every worker it spawns), and otherwise to one
// worker per core (par.DefaultThreads). The communicator is ready for
// XtraPuLPComm and the other external-world entry points; callers that
// print or write output should do so from rank 0 only
// (Comm.Rank() == 0).
func SocketComm(threads int) (*mpi.Comm, func() error, error) {
	cfg, err := mpi.SocketConfigFromEnv()
	if err != nil {
		return nil, nil, err
	}
	tr, err := mpi.DialSocket(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("repro: rendezvous: %w", err)
	}
	if threads < 1 {
		if env, err := strconv.Atoi(os.Getenv("REPRO_THREADS")); err == nil && env > 0 {
			threads = env
		} else {
			threads = par.DefaultThreads()
		}
	}
	return mpi.NewComm(tr, threads), tr.Close, nil
}

// staticGenerator wraps an in-memory graph as a Generator so the
// distributed builders can chunk it.
func staticGenerator(g *Graph) *Generator {
	edges := g.Edges()
	return gen.FromEdgeList("static", g.N, edges)
}

// Method names accepted by Partition.
const (
	MethodXtraPuLP    = "xtrapulp"
	MethodPuLP        = "pulp"
	MethodMetisLike   = "metis"
	MethodKahipLike   = "kahip"
	MethodRandom      = "random"
	MethodVertexBlock = "vertexblock"
	MethodEdgeBlock   = "edgeblock"
)

// Methods lists every partitioning method name accepted by Partition,
// in the order the paper introduces them.
func Methods() []string {
	return []string{
		MethodXtraPuLP, MethodPuLP, MethodMetisLike, MethodKahipLike,
		MethodRandom, MethodVertexBlock, MethodEdgeBlock,
	}
}

// Partition computes a p-way partition of g with the named method
// using that method's defaults (XtraPuLP runs on 4 simulated ranks).
func Partition(method string, g *Graph, p int, seed uint64) ([]int32, error) {
	switch method {
	case MethodXtraPuLP:
		// ThreadsPerRank pinned: the method defaults promise the same
		// partition for the same seed on every machine, and the
		// propagation RNG streams are thread-id keyed.
		parts, _, err := XtraPuLP(g, Config{Parts: p, Ranks: 4, ThreadsPerRank: 1, RandomDist: true, Seed: seed})
		return parts, err
	case MethodPuLP:
		opt := pulp.DefaultOptions(p)
		opt.Threads = 1 // method defaults promise machine-independent partitions
		opt.Seed = seed
		parts, _, err := pulp.Partition(g, opt)
		return parts, err
	case MethodMetisLike:
		opt := multilevel.MetisLike(p)
		opt.Seed = seed
		parts, _, err := multilevel.Partition(g, opt)
		return parts, err
	case MethodKahipLike:
		opt := multilevel.KahipLike(p)
		opt.Seed = seed
		parts, _, err := multilevel.Partition(g, opt)
		return parts, err
	case MethodRandom:
		return partition.Random(g, p, seed), nil
	case MethodVertexBlock:
		return partition.VertexBlock(g, p), nil
	case MethodEdgeBlock:
		return partition.EdgeBlock(g, p), nil
	default:
		return nil, fmt.Errorf("repro: unknown method %q (have %v)", method, Methods())
	}
}
