package repro

import (
	"path/filepath"
	"testing"
)

func TestXtraPuLPFacade(t *testing.T) {
	g := RMAT(10, 8, 1).MustBuild()
	parts, rep, err := XtraPuLP(g, Config{Parts: 8, Ranks: 4, RandomDist: true})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(parts)) != g.N {
		t.Fatalf("got %d assignments for %d vertices", len(parts), g.N)
	}
	q := Evaluate(g, parts, 8)
	if q.VertexImbalance > 1.15 {
		t.Errorf("vertex imbalance %.3f", q.VertexImbalance)
	}
	if rep.TotalTime <= 0 || rep.CommVolume <= 0 {
		t.Errorf("report not populated: %+v", rep)
	}
	if rep.Quality.CutEdges != q.CutEdges {
		t.Errorf("report cut %d != evaluated %d", rep.Quality.CutEdges, q.CutEdges)
	}
}

func TestXtraPuLPGenDoesNotNeedSharedGraph(t *testing.T) {
	gen := RandHD(4096, 8, 3)
	parts, _, err := XtraPuLPGen(gen, Config{Parts: 4, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(parts)) != gen.N {
		t.Fatalf("got %d assignments", len(parts))
	}
}

func TestPartitionAllMethods(t *testing.T) {
	g := RMAT(9, 8, 5).MustBuild()
	const p = 4
	for _, m := range Methods() {
		parts, err := Partition(m, g, p, 7)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if int64(len(parts)) != g.N {
			t.Fatalf("%s: %d assignments", m, len(parts))
		}
		for v, pt := range parts {
			if pt < 0 || int(pt) >= p {
				t.Fatalf("%s: vertex %d part %d", m, v, pt)
			}
		}
	}
}

func TestPartitionUnknownMethod(t *testing.T) {
	g := RandER(64, 128, 1).MustBuild()
	if _, err := Partition("bogus", g, 2, 1); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestConfigValidation(t *testing.T) {
	g := RandER(64, 128, 1).MustBuild()
	if _, _, err := XtraPuLP(g, Config{Parts: 0}); err == nil {
		t.Fatal("expected error for Parts=0")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := Mesh3D(4, 4, 4).MustBuild()
	path := filepath.Join(t.TempDir(), "mesh.bin")
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || g2.NumArcs() != g.NumArcs() {
		t.Fatal("round trip mismatch")
	}
}

// The asynchronous delta exchange must be a pure transport change: for
// fixed seeds it yields exactly the partition (and therefore exactly
// the Quality metrics) of the bulk-synchronous path on every graph
// class and rank count, while sending strictly fewer elements whenever
// rank boundaries exist.
func TestAsyncDeltaExchangeMatchesSyncDeterministically(t *testing.T) {
	gens := []*Generator{
		RMAT(10, 8, 1),
		RandER(1024, 4096, 2),
		Mesh3D(10, 10, 10),
	}
	for _, gn := range gens {
		for _, ranks := range []int{1, 2, 3, 4, 8} {
			// ThreadsPerRank pinned serial: the partitioner's balance
			// sweeps read live atomic tallies, so bit-equality across
			// modes is only promised at one thread.
			base := Config{Parts: 8, Ranks: ranks, ThreadsPerRank: 1, RandomDist: true, Seed: 7}
			sparts, srep, err := XtraPuLPGen(gn, base)
			if err != nil {
				t.Fatalf("%s ranks=%d sync: %v", gn.Name, ranks, err)
			}
			async := base
			async.AsyncExchange = true
			aparts, arep, err := XtraPuLPGen(gn, async)
			if err != nil {
				t.Fatalf("%s ranks=%d async: %v", gn.Name, ranks, err)
			}
			for v := range sparts {
				if sparts[v] != aparts[v] {
					t.Fatalf("%s ranks=%d: partitions diverge at vertex %d: sync %d, async %d",
						gn.Name, ranks, v, sparts[v], aparts[v])
				}
			}
			sq, aq := srep.Quality, arep.Quality
			if sq.CutEdges != aq.CutEdges || sq.MaxPartCut != aq.MaxPartCut ||
				sq.EdgeCutRatio != aq.EdgeCutRatio || sq.VertexImbalance != aq.VertexImbalance ||
				sq.EdgeImbalance != aq.EdgeImbalance {
				t.Fatalf("%s ranks=%d: quality diverges: sync %+v async %+v", gn.Name, ranks, sq, aq)
			}
			// Async sends strictly less at every rank count: with
			// boundaries it ships packed deltas instead of (gid, value)
			// pairs, and even without them the piggybacked tallies
			// retire the per-iteration settle reductions sync pays.
			if arep.ExchangeVolume >= srep.ExchangeVolume {
				t.Errorf("%s ranks=%d: async exchange volume %d not below sync %d",
					gn.Name, ranks, arep.ExchangeVolume, srep.ExchangeVolume)
			}
			if srep.ReductionOps <= arep.ReductionOps {
				t.Errorf("%s ranks=%d: async reductions %d not below sync %d",
					gn.Name, ranks, arep.ReductionOps, srep.ReductionOps)
			}
		}
	}
}

// An explicit SizeEpoch schedules exact resyncs between pure-piggyback
// settles. On a complete rank neighborhood (hashed RMAT at 4 ranks)
// the piggybacked sums are already exact, so any epoch keeps the
// partition bit-identical to sync; the Allreduce count interpolates
// between sync's one-per-iteration and auto mode's recounts-only.
func TestSizeEpochExplicitOnCompleteTopology(t *testing.T) {
	gn := RMAT(10, 8, 1)
	base := Config{Parts: 8, Ranks: 4, ThreadsPerRank: 1, RandomDist: true, Seed: 7}
	sparts, srep, err := XtraPuLPGen(gn, base)
	if err != nil {
		t.Fatal(err)
	}
	auto := base
	auto.AsyncExchange = true
	_, autoRep, err := XtraPuLPGen(gn, auto)
	if err != nil {
		t.Fatal(err)
	}
	epoch := auto
	epoch.SizeEpoch = 4
	eparts, erep, err := XtraPuLPGen(gn, epoch)
	if err != nil {
		t.Fatal(err)
	}
	for v := range sparts {
		if sparts[v] != eparts[v] {
			t.Fatalf("SizeEpoch=4 diverges from sync at vertex %d: %d vs %d", v, sparts[v], eparts[v])
		}
	}
	if !(autoRep.ReductionOps < erep.ReductionOps && erep.ReductionOps < srep.ReductionOps) {
		t.Errorf("reduction counts not ordered auto < epoch < sync: %d, %d, %d",
			autoRep.ReductionOps, erep.ReductionOps, srep.ReductionOps)
	}
}

func TestXtraPuLPQualityBeatsRandomOnAllClasses(t *testing.T) {
	gens := []*Generator{
		RMAT(10, 8, 1),
		RandER(1024, 4096, 2),
		RandHD(1024, 8, 3),
		Mesh3D(10, 10, 10),
		SmallWorld(1024, 8, 0.05, 4),
		PowerLaw(1024, 4096, 2.2, 5),
	}
	const p = 8
	for _, gn := range gens {
		g := gn.MustBuild()
		parts, _, err := XtraPuLP(g, Config{Parts: p, Ranks: 2, RandomDist: true})
		if err != nil {
			t.Fatalf("%s: %v", gn.Name, err)
		}
		qx := Evaluate(g, parts, p)
		rparts, _ := Partition(MethodRandom, g, p, 9)
		qr := Evaluate(g, rparts, p)
		if qx.EdgeCutRatio >= qr.EdgeCutRatio {
			t.Errorf("%s: XtraPuLP cut %.3f not below random %.3f",
				gn.Name, qx.EdgeCutRatio, qr.EdgeCutRatio)
		}
	}
}
