#!/bin/sh
# Docs gate: every internal package must carry a package comment, and
# the architecture document must exist. Mirrors the in-tree test
# TestEveryInternalPackageHasPackageComment (same file set — non-test
# Go files — and same pattern) so the check also runs without a Go
# toolchain invocation.
set -eu

fail=0
for d in internal/*/; do
    pkg=$(basename "$d")
    files=$(find "$d" -maxdepth 1 -name '*.go' ! -name '*_test.go')
    if [ -z "$files" ]; then
        # A package directory with no non-test Go files is a broken
        # tree, not something to skip silently.
        echo "docs gate: internal/${pkg} has no non-test Go files" >&2
        fail=1
        continue
    fi
    # shellcheck disable=SC2086
    if ! grep -qE "^// Package ${pkg}( |\$)" $files; then
        echo "docs gate: internal/${pkg} has no package comment" >&2
        fail=1
    fi
done

if [ ! -f docs/ARCHITECTURE.md ]; then
    echo "docs gate: docs/ARCHITECTURE.md is missing" >&2
    fail=1
fi

exit "$fail"
