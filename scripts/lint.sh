#!/bin/sh
# reprolint: the project's static-analysis suite (internal/lint).
# Enforces the exchange engine's contracts — collective symmetry,
# arena-view lifetimes, Begin*/Flush* pairing and pipeline bounds,
# exchanger lifecycle, //repro:hotpath allocation freedom, checked
# artifact errors — and the determinism contract via the detlint
# family (maporder, floatfold, wallclock, seedflow). See
# docs/INVARIANTS.md for the rule catalogue.
#
# Mirrors the CI reprolint job: findings are errors, and the tests do
# not run until the tree is clean.
#
# Exit-code discipline: every step runs even when an earlier one
# fails, and the script exits nonzero if ANY step failed. The previous
# `set -e` version stopped at the first failure, so a reprolint
# finding hid the vulncheck result (and a formatting of the script
# that put govulncheck last could mask reprolint's code entirely);
# accumulating into rc keeps each step's verdict visible and the final
# exit honest.
set -u
cd "$(dirname "$0")/.."

rc=0

go run ./cmd/reprolint ./... || rc=1

# Suppressions must stay live: a directive naming a nonexistent
# analyzer outlived its check (or never worked).
go run ./cmd/reprolint -ignores ./... >/dev/null || rc=1

# Known-vulnerability scan, pinned so local runs and CI resolve the
# same scanner (and the build does not chase @latest). Skippable for
# offline work: REPRO_SKIP_VULNCHECK=1 scripts/lint.sh
if [ "${REPRO_SKIP_VULNCHECK:-0}" != "1" ]; then
	go run golang.org/x/vuln/cmd/govulncheck@v1.1.4 ./... || rc=1
fi

if [ "$rc" -eq 0 ]; then
	echo "reprolint: tree is clean"
else
	echo "reprolint: FAILED (see findings above)" >&2
fi
exit "$rc"
