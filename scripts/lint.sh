#!/bin/sh
# reprolint: the project's static-analysis suite (internal/lint).
# Enforces the exchange engine's contracts — collective symmetry,
# arena-view lifetimes, Begin*/Flush* pairing and pipeline bounds,
# exchanger lifecycle, //repro:hotpath allocation freedom, and checked
# artifact errors. See docs/INVARIANTS.md for the rule catalogue.
#
# Mirrors the CI reprolint job: findings are errors, and the tests do
# not run until the tree is clean.
set -eu
cd "$(dirname "$0")/.."

go run ./cmd/reprolint ./...
echo "reprolint: tree is clean"
